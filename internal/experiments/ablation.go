package experiments

import (
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
)

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's figures: they quantify the individual mechanisms
// (interconnect topology, mapping optimization, DP lookahead depth) on
// this implementation.

// TopologyRow is one (workload, topology) result.
type TopologyRow struct {
	Workload string
	Topology string
	TimeMS   float64
	NoCFrac  float64
	ByteHops int64
}

// Topologies compares the three modeled interconnects (2D mesh, torus,
// H-tree — the families named in Sec. IV-C) under atomic dataflow.
func Topologies(cfg Config) ([]TopologyRow, error) {
	base := cfg.hw()
	meshes := []*noc.Mesh{
		noc.NewMesh(8, 8, base.Mesh.LinkBytes),
		noc.NewTorus(8, 8, base.Mesh.LinkBytes),
		noc.NewHTree(64, base.Mesh.LinkBytes),
	}
	var rows []TopologyRow
	cfg.printf("Ablation — interconnect topology under atomic dataflow\n")
	for _, name := range cfg.workloads([]string{"resnet50", "inceptionv3"}) {
		g := mustModel(name)
		for _, m := range meshes {
			hw := base
			hw.Mesh = m
			rep, err := runAD(g, cfg.batch(4), hw, cfg.Mode, cfg.search())
			if err != nil {
				return nil, err
			}
			row := TopologyRow{
				Workload: name, Topology: m.Kind().String(),
				TimeMS: rep.TimeMS, NoCFrac: rep.NoCOverheadFraction(),
				ByteHops: rep.NoCByteHops,
			}
			rows = append(rows, row)
			cfg.printf("  %-14s %-6s %9.3f ms  NoC-blocked %5.1f%%  %6.1f MB-hops\n",
				name, row.Topology, row.TimeMS, 100*row.NoCFrac, float64(row.ByteHops)/1e6)
		}
	}
	return rows, nil
}

// MappingRow is one (workload, mapping mode) result.
type MappingRow struct {
	Workload  string
	Optimized bool
	TimeMS    float64
	ByteHops  int64
	DRAMBytes int64
	Energy    float64
}

// MappingAblation isolates the atom-engine mapping stage: the paper's
// TransferCost permutation search plus weight-affinity refinement versus
// naive zig-zag placement (Fig. 7's solution A vs B generalized).
func MappingAblation(cfg Config) ([]MappingRow, error) {
	hw := cfg.hw()
	var rows []MappingRow
	cfg.printf("Ablation — optimized vs naive atom-engine mapping\n")
	for _, name := range cfg.workloads([]string{"resnet50", "pnasnet"}) {
		g := mustModel(name)
		for _, optimized := range []bool{false, true} {
			h := hw
			h.NaiveMapping = !optimized
			rep, err := runAD(g, cfg.batch(4), h, cfg.Mode, cfg.search())
			if err != nil {
				return nil, err
			}
			rows = append(rows, MappingRow{
				Workload: name, Optimized: optimized,
				TimeMS: rep.TimeMS, ByteHops: rep.NoCByteHops,
				DRAMBytes: rep.DRAMReadBytes + rep.DRAMWriteBytes,
				Energy:    rep.Energy.TotalMJ(),
			})
			cfg.printf("  %-14s optimized=%-5v %9.3f ms  %6.1f MB-hops  %6.2f mJ\n",
				name, optimized, rep.TimeMS, float64(rep.NoCByteHops)/1e6, rep.Energy.TotalMJ())
		}
	}
	return rows, nil
}

// FlexRow is one (workload, dataflow) comparison result.
type FlexRow struct {
	Workload string
	Dataflow string
	TimeMS   float64
	Util     float64
}

// FlexDataflow implements the paper's Discussion (Sec. VI-A): atomic
// dataflow adapts to arrays that spatially map three loop parameters by
// merely changing the atom coefficient quantization. This experiment
// compares AD on the planar 16x16 KC-P array against the same-MAC-count
// 8x8x4 flexible array, where width splitting rescues shallow-channel
// layers.
func FlexDataflow(cfg Config) ([]FlexRow, error) {
	base := cfg.hw()
	var rows []FlexRow
	cfg.printf("Discussion — planar KC-P vs 3D flexible array (equal MACs)\n")
	for _, name := range cfg.workloads([]string{"resnet50", "efficientnet"}) {
		g := mustModel(name)
		for _, variant := range []struct {
			label string
			eng   engine.Config
			df    engine.Dataflow
		}{
			{"KC-P 16x16", engine.Default(), engine.KCPartition},
			{"Flex 8x8x4", engine.FlexDefault(), engine.FlexPartition},
		} {
			hw := base
			hw.Engine = variant.eng
			hw.Dataflow = variant.df
			rep, err := runAD(g, cfg.batch(1), hw, cfg.Mode, cfg.search())
			if err != nil {
				return nil, err
			}
			rows = append(rows, FlexRow{Workload: name, Dataflow: variant.label,
				TimeMS: rep.TimeMS, Util: rep.PEUtilization})
			cfg.printf("  %-14s %-11s %9.3f ms  util %5.1f%%\n",
				name, variant.label, rep.TimeMS, 100*rep.PEUtilization)
		}
	}
	return rows, nil
}

// SearchRow records the compile-time search cost for one workload.
type SearchRow struct {
	Workload   string
	Seconds    float64
	Atoms      int
	Rounds     int
	PaperXeonS float64 // the paper's reported Xeon E5-2620 time, 0 if unlisted
}

// paperSearchTimes are the search overheads the paper reports (Sec. V-B).
var paperSearchTimes = map[string]float64{
	"resnet50": 66.5, "resnet152": 102.7, "inceptionv3": 406.9, "resnet1001": 1044.6,
}

// SearchOverhead measures the full compile-time pipeline (SA + DAG +
// scheduling) per workload, the quantity the paper reports as 66.5 s
// (ResNet-50) to 1044.6 s (ResNet-1001) on a Xeon host. This
// implementation's closed-form Cycle() oracle makes it orders of
// magnitude faster.
func SearchOverhead(cfg Config) ([]SearchRow, error) {
	hw := cfg.hw()
	var rows []SearchRow
	cfg.printf("Search overhead — compile-time cost of the AD pipeline\n")
	for _, name := range cfg.workloads([]string{"resnet50", "resnet152", "inceptionv3"}) {
		g := mustModel(name)
		start := timeNow()
		p, err := buildAD(g, cfg.batch(1), hw, cfg.Mode, cfg.search())
		if err != nil {
			return nil, err
		}
		secs := timeSince(start)
		rows = append(rows, SearchRow{
			Workload: name, Seconds: secs,
			Atoms: p.dag.NumAtoms(), Rounds: p.sched.NumRounds(),
			PaperXeonS: paperSearchTimes[name],
		})
		cfg.printf("  %-14s %8.2f s (paper: %6.1f s) — %d atoms, %d rounds\n",
			name, secs, paperSearchTimes[name], p.dag.NumAtoms(), p.sched.NumRounds())
	}
	return rows, nil
}

// LookaheadRow is one (lookahead depth) scheduling result.
type LookaheadRow struct {
	Lookahead  int
	MakespanLB int64
	TimeMS     float64
}

// LookaheadAblation sweeps the DP recursion depth of Algorithm 2 on one
// workload, showing the diminishing returns that justify the default of 3.
func LookaheadAblation(cfg Config) ([]LookaheadRow, error) {
	hw := cfg.hw()
	name := "pnascell"
	if w := cfg.workloads(nil); len(w) > 0 {
		name = w[0]
	}
	g := mustModel(name)
	var rows []LookaheadRow
	cfg.printf("Ablation — DP lookahead depth on %s\n", name)
	for _, depth := range []int{1, 2, 3, 5} {
		p, err := buildADWithLookahead(g, cfg.batch(4), hw, cfg.search(), depth)
		if err != nil {
			return nil, err
		}
		rep, err := sim.Run(p.dag, p.sched, hw)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LookaheadRow{
			Lookahead: depth, MakespanLB: p.sched.MakespanLB(), TimeMS: rep.TimeMS,
		})
		cfg.printf("  depth %d: makespan-LB %d cycles, %9.3f ms\n",
			depth, p.sched.MakespanLB(), rep.TimeMS)
	}
	return rows, nil
}
