package experiments

import "testing"

func TestFlexDataflowExperiment(t *testing.T) {
	cfg := fast("efficientnet")
	rows, err := FlexDataflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeMS <= 0 || r.Util <= 0 {
			t.Errorf("%s/%s degenerate", r.Workload, r.Dataflow)
		}
	}
}
