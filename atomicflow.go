// Package atomicflow is a from-scratch Go implementation of Atomic
// Dataflow (HPCA 2022): graph-level DNN workload orchestration for
// scalable multi-engine accelerators.
//
// The library partitions a DNN inference graph into atoms sized to the
// engine microarchitecture (simulated annealing, Algorithm 1), schedules
// the atomic DAG in engine-synchronized Rounds with priority-pruned
// dynamic programming (Algorithm 2), places each Round's atoms on the 2D
// mesh to minimize NoC transfer cost, manages the distributed on-chip
// buffers with invalid-occupation eviction (Algorithm 3), and evaluates
// the result on an event-driven system simulator with engine, NoC, HBM
// and energy models.
//
// Quick start:
//
//	g, _ := atomicflow.LoadModel("resnet50")
//	sol, _ := atomicflow.Orchestrate(g, atomicflow.Options{Batch: 1})
//	fmt.Printf("latency: %.2f ms, utilization: %.1f%%\n",
//	    sol.Report.TimeMS, 100*sol.Report.PEUtilization)
//
// The baseline strategies the paper compares against (Layer-Sequential,
// CNN-Partition, Inter-Layer Pipelining, Rammer-style rTask packing) are
// exposed through RunLS, RunCNNP, RunILPipe and RunRammer.
package atomicflow

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"github.com/atomic-dataflow/atomicflow/internal/anneal"
	"github.com/atomic-dataflow/atomicflow/internal/atom"
	"github.com/atomic-dataflow/atomicflow/internal/baseline"
	"github.com/atomic-dataflow/atomicflow/internal/cost"
	"github.com/atomic-dataflow/atomicflow/internal/cost/surrogate"
	"github.com/atomic-dataflow/atomicflow/internal/dram"
	"github.com/atomic-dataflow/atomicflow/internal/energy"
	"github.com/atomic-dataflow/atomicflow/internal/engine"
	"github.com/atomic-dataflow/atomicflow/internal/graph"
	"github.com/atomic-dataflow/atomicflow/internal/modelio"
	"github.com/atomic-dataflow/atomicflow/internal/models"
	"github.com/atomic-dataflow/atomicflow/internal/noc"
	"github.com/atomic-dataflow/atomicflow/internal/obs"
	"github.com/atomic-dataflow/atomicflow/internal/schedule"
	"github.com/atomic-dataflow/atomicflow/internal/sim"
	"github.com/atomic-dataflow/atomicflow/internal/trace"
)

// Core workload and hardware types, aliased from the implementation
// packages so the whole public surface lives in this package.
type (
	// Graph is a DNN inference workload: a DAG of layers.
	Graph = graph.Graph
	// Layer is one vertex of a workload graph.
	Layer = graph.Layer
	// Shape holds CONV-style tensor parameters (Hi, Wi, Ci, Ho, Wo, Co,
	// Kh, Kw, stride, padding).
	Shape = graph.Shape
	// OpKind enumerates layer operator types.
	OpKind = graph.OpKind
	// Dataflow selects the engine's spatial unrolling (KC-P or YX-P).
	Dataflow = engine.Dataflow
	// EngineConfig describes a single tensor engine.
	EngineConfig = engine.Config
	// HardwareConfig assembles the full accelerator model.
	HardwareConfig = sim.Config
	// Report is a simulation outcome: cycles, utilization, traffic,
	// energy breakdown.
	Report = sim.Report
	// ScheduleMode selects the DAG scheduling effort (DP or greedy).
	ScheduleMode = schedule.Mode
	// EnergyBreakdown itemizes energy by component in picojoules.
	EnergyBreakdown = energy.Breakdown
	// Mesh is the 2D-mesh NoC.
	Mesh = noc.Mesh
	// DRAMConfig describes the HBM stack.
	DRAMConfig = dram.Config
	// EnergyModel holds per-event energy costs.
	EnergyModel = energy.Model
	// CostOracle prices atomic tasks on an engine — the Cycle() oracle of
	// Algorithm 1. Install one in HardwareConfig.Oracle to share its cache
	// across orchestration runs; NewCostOracle builds the standard stack.
	CostOracle = cost.Oracle
	// OracleStats counts cost-oracle evaluations, cache hits and misses.
	OracleStats = cost.Stats
	// SurrogateModel is the online-learned first tier of the two-tier
	// cost oracle: it trains from the exact-evaluation stream the cost
	// oracle sees and pre-filters candidate partitions so exact
	// evaluations are spent only on survivors. Build with
	// NewSurrogateModel and install via Options.SurrogateModel (or let
	// Options.Surrogate create a fresh one per run).
	SurrogateModel = surrogate.Model
	// SurrogateStats summarizes a surrogate model's training and
	// filtering activity (samples, refits, skips, online R²/MAE).
	SurrogateStats = surrogate.Stats
	// MetricsRegistry collects counters, gauges and histograms from the
	// search, scheduler and simulator when installed via Options.Metrics.
	// Nil registries (and all their instruments) are safe no-ops, so the
	// same code runs instrumented or not.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's instruments,
	// exported by Solution.Metrics and (*MetricsRegistry).Snapshot.
	MetricsSnapshot = obs.Snapshot
	// Partition is one layer's atomic tiling choice (Hp, Wp, Cop splits).
	// Solution.Partitions exposes the solved per-layer map and
	// Options.WarmStart accepts one, so a prior solution can seed a new
	// search on the same graph.
	Partition = atom.Partition
	// SearchSample is one per-chain annealing progress observation,
	// delivered in batches through Options.Progress: chain index,
	// iterations, temperature, best energy/unified cycle, and whether the
	// chain adopted the global best at this exchange barrier. CV()
	// converts the energy to the paper's load-balance metric.
	SearchSample = anneal.Sample
)

// Operator kinds.
const (
	OpInput         = graph.OpInput
	OpConv          = graph.OpConv
	OpDepthwiseConv = graph.OpDepthwiseConv
	OpFC            = graph.OpFC
	OpPool          = graph.OpPool
	OpEltwise       = graph.OpEltwise
	OpConcat        = graph.OpConcat
	OpActivation    = graph.OpActivation
	OpGlobalPool    = graph.OpGlobalPool
)

// Dataflows (paper Sec. V-B): KCPartition is the NVDLA-style channel
// unrolling, YXPartition the ShiDianNao-style spatial unrolling, and
// FlexPartition the paper's Discussion extension for arrays that
// spatially map three loop dimensions (set EngineConfig.PEz).
const (
	KCPartition   = engine.KCPartition
	YXPartition   = engine.YXPartition
	FlexPartition = engine.FlexPartition
)

// Scheduling modes.
const (
	ModeDP     = schedule.DP
	ModeGreedy = schedule.Greedy
)

// NewGraph returns an empty workload graph; add layers with
// (*Graph).AddLayer and call (*Graph).Finalize before orchestration.
func NewGraph(name string) *Graph { return graph.New(name) }

// UnionGraphs combines several finalized workloads into one multi-tenant
// graph: orchestrating the union co-locates the DNNs on the accelerator,
// with the scheduler interleaving their atoms like batch samples.
func UnionGraphs(name string, gs ...*Graph) (*Graph, error) { return graph.Union(name, gs...) }

// Shape constructors.
var (
	ConvShape    = graph.ConvShape
	FCShape      = graph.FCShape
	PoolShape    = graph.PoolShape
	EltwiseShape = graph.EltwiseShape
)

// NewMesh builds a W x H engine mesh with the given per-cycle link
// bandwidth in bytes.
func NewMesh(w, h, linkBytes int) *Mesh { return noc.NewMesh(w, h, linkBytes) }

// LoadModel builds one of the bundled workloads (see ModelNames).
func LoadModel(name string) (*Graph, error) { return models.Build(name) }

// WriteModel serializes a workload graph to the JSON exchange format —
// the library's ONNX-analogue interchange (see internal/modelio).
func WriteModel(w io.Writer, g *Graph) error { return modelio.Write(w, g) }

// ReadModel parses a workload graph from the JSON exchange format and
// returns it finalized.
func ReadModel(r io.Reader) (*Graph, error) { return modelio.Read(r) }

// ModelNames lists the bundled workload names.
func ModelNames() []string { return models.Names() }

// PaperWorkloads lists the eight models of the paper's Table I.
func PaperWorkloads() []string { return append([]string(nil), models.PaperWorkloads...) }

// DefaultHardware returns the paper's evaluation platform (Sec. V-A):
// 8x8 engines of 16x16 PEs, 128 KB SRAM each, 500 MHz, 4 GB HBM at
// 128 GB/s, 2D-mesh NoC.
func DefaultHardware() HardwareConfig { return sim.DefaultConfig() }

// NewMetrics returns an empty metrics registry. Install it as
// Options.Metrics (or HardwareConfig.Metrics) to collect the run's
// counters and histograms; export with WriteJSON, WritePrometheus or the
// obs HTTP handler (cmd/adexp -metrics-addr serves both).
func NewMetrics() *MetricsRegistry { return obs.New() }

// NewCostOracle returns the standard instrumented memoizing cost oracle.
// Set it as HardwareConfig.Oracle (or let Orchestrate build one per run)
// to share one evaluation cache across searches, schedules and
// simulations; Solution.OracleStats reports its counters.
func NewCostOracle() CostOracle { return cost.Default() }

// NewSurrogateModel returns an empty learned cost model. Install it via
// Options.SurrogateModel (typically together with a shared
// HardwareConfig.Oracle) to accumulate training across orchestration
// runs; it starts filtering only once its online accuracy clears the
// readiness bar, so a cold model simply behaves like exact mode.
func NewSurrogateModel() *SurrogateModel { return surrogate.New() }

// Options tunes Orchestrate. The zero value gives the paper's defaults on
// the default hardware with batch 1.
type Options struct {
	// Batch is the number of inference samples gathered into one atomic
	// DAG (default 1).
	Batch int
	// Hardware is the accelerator model (default DefaultHardware()).
	Hardware *HardwareConfig
	// Mode selects DP (default) or greedy scheduling.
	Mode ScheduleMode
	// SAIters bounds the simulated-annealing search (default 600).
	SAIters int
	// Seed makes the SA search reproducible (default 1).
	Seed int64
	// Chains is the width of the parallel annealing portfolio (default
	// 1): the SAIters budget is split across this many concurrently-run,
	// independently-seeded SA chains that exchange best states at
	// deterministic barriers, cutting cold-search wall-clock roughly by
	// the core count while preserving solution quality. Results are
	// bit-identical for a fixed (Seed, Chains) pair regardless of
	// GOMAXPROCS; Chains <= 1 is the classic sequential search.
	Chains int
	// MaxTilesPerLayer caps the atom count per layer (default 1024).
	MaxTilesPerLayer int
	// Surrogate enables the two-tier learned cost oracle (default off):
	// candidate generation prices enumerated partitions with an
	// online-learned model trained from the oracle's exact-evaluation
	// stream, spending exact Evaluate calls only on the survivors, and a
	// post-search refinement pass re-admits deferred partitions near the
	// final unified cycle. Final schedules and every reported cycle
	// number remain exactly evaluated. Off (the default) leaves all
	// search code paths untouched, so solutions are bit-identical to
	// pre-surrogate builds; on, solutions may differ from exact mode
	// (within a small tolerance) and — when SurrogateModel is shared —
	// depend on what the model learned from earlier runs.
	Surrogate bool
	// SurrogateModel is the model used when Surrogate is true. Nil means
	// a fresh model per Orchestrate call (deterministic for a fixed
	// workload/options tuple); sharing one across runs lets later solves
	// reuse earlier training at the price of history-dependence.
	SurrogateModel *SurrogateModel
	// WarmStart, when non-empty, seeds the search from a prior solution
	// of the same graph (layer id -> partition): chain 0 starts at the
	// donor state instead of the deterministic default, and candidate
	// enumeration keeps a window around each donor split. Solutions stay
	// exactly evaluated; only the starting point (and so the explored
	// trajectory) changes. Entries for unknown layers are ignored, so a
	// donor solved under different hardware is safe.
	WarmStart map[int]Partition
	// VerifyDelta cross-checks every incrementally-scored SA move against
	// a from-scratch recomputation, panicking on any divergence. It is a
	// correctness harness for the O(Δ) move-evaluation machinery (run in
	// CI over the whole model zoo); it never changes the solution, only
	// the search's cost.
	VerifyDelta bool
	// TraceWriter, when non-nil, receives a Chrome trace-event JSON
	// document of the simulated execution (open in chrome://tracing or
	// Perfetto; one lane per engine).
	TraceWriter io.Writer
	// PerfettoWriter, when non-nil, receives the full-span trace: engine
	// compute lanes plus named NoC and DRAM lanes with blocked spans, the
	// DRAM prefetch windows and a flow-bytes counter track (open in
	// ui.perfetto.dev).
	PerfettoWriter io.Writer
	// Metrics, when non-nil, collects the run's counters and histograms
	// across the SA search and the simulator (overrides
	// Hardware.Metrics); Solution.Metrics holds the final snapshot.
	Metrics *MetricsRegistry
	// Progress, when non-nil, streams per-chain search progress: one
	// SearchSample batch at every annealing exchange barrier and a final
	// batch after the polish sweep. The hook runs on the search's
	// coordinating goroutine between chain segments and must only
	// observe — installing it never perturbs the seeded trajectory, so
	// solutions (and their digests) are bit-identical with or without it.
	// This is what feeds the serving layer's live dashboard.
	Progress func([]SearchSample)
	// Context, when non-nil, bounds the orchestration: the SA search, the
	// Round scheduler and the simulator poll it and Orchestrate returns
	// an error wrapping the context's error (context.Canceled or
	// context.DeadlineExceeded) as soon as it fires. An uncancelled
	// context never changes the solution produced.
	Context context.Context
}

func (o Options) batch() int {
	if o.Batch < 1 {
		return 1
	}
	return o.Batch
}

func (o Options) hardware() HardwareConfig {
	if o.Hardware != nil {
		return *o.Hardware
	}
	return DefaultHardware()
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Solution is a complete atomic-dataflow orchestration of one workload.
type Solution struct {
	// Report is the simulated execution outcome.
	Report Report
	// Atoms is the atomic DAG size (excluding virtual input atoms).
	Atoms int
	// Rounds is the schedule length.
	Rounds int
	// AtomCycleCV is the coefficient of variation of atom execution
	// cycles after SA — the load-balance metric of Algorithm 1.
	AtomCycleCV float64
	// SATrace is the SA convergence trace (variance per iteration).
	SATrace []float64
	// SearchTime is the compile-time cost of the full search.
	SearchTime time.Duration
	// OracleStats counts the cost-oracle evaluations, cache hits and
	// misses of this orchestration (zero when the configured oracle does
	// not expose counters).
	OracleStats OracleStats
	// SurrogateStats summarizes the learned cost model's training and
	// filtering activity (zero when Options.Surrogate was off).
	SurrogateStats SurrogateStats
	// Metrics is the final snapshot of the run's metrics registry (zero
	// maps when no registry was installed).
	Metrics MetricsSnapshot

	dag   *atom.DAG
	sched *schedule.Schedule
	spec  map[int]atom.Partition
}

// Partitions returns the solved per-layer partition map — the state a
// later orchestration of the same graph can warm-start from via
// Options.WarmStart. The returned map is a copy.
func (s *Solution) Partitions() map[int]Partition {
	out := make(map[int]Partition, len(s.spec))
	for id, p := range s.spec {
		out[id] = p
	}
	return out
}

// Digest returns a hex SHA-256 over the solution's deterministic content:
// the full simulation Report, the atom and Round counts, the final
// load-balance CV, and the per-Round atom assignment. Wall-clock fields
// (SearchTime, Metrics, OracleStats) are excluded, so a fixed
// (graph, hardware, options, seed) triple must always produce the same
// digest — the property pinned by the cross-zoo determinism matrix and
// used by the serving layer as a solution identity.
func (s *Solution) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "report %+v\n", s.Report)
	fmt.Fprintf(h, "atoms %d rounds %d cv %v\n", s.Atoms, s.Rounds, s.AtomCycleCV)
	if s.sched != nil {
		for i, r := range s.sched.Rounds {
			fmt.Fprintf(h, "round %d %v\n", i, r.Atoms)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SearchFunc runs the atom-generation search for OrchestrateWith. It
// receives the workload, the engine model, the dataflow and the fully
// assembled annealing options, and returns the search result. The
// signature names internal types on purpose: this is the module's own
// extension point (the serving layer injects a distributed fleet solve
// here), not part of the stable external API.
type SearchFunc func(g *Graph, cfg EngineConfig, df Dataflow, opt anneal.Options) (anneal.Result, error)

// Orchestrate runs the full atomic-dataflow pipeline on the workload:
// SA atom generation, atomic DAG construction, DAG scheduling, and
// simulation with mapping + buffering.
func Orchestrate(g *Graph, opt Options) (*Solution, error) {
	return OrchestrateWith(g, opt, nil)
}

// OrchestrateWith is Orchestrate with the atom-generation search
// supplied by the caller; a nil search runs the in-process anneal.SA.
// The injected search must honor the annealing options it is handed —
// in particular the determinism contract: for a fixed (graph, hardware,
// options) tuple it must return the same result anneal.SA would, or
// solution digests stop being a pure function of the request.
func OrchestrateWith(g *Graph, opt Options, search SearchFunc) (*Solution, error) {
	if g == nil {
		return nil, fmt.Errorf("atomicflow: nil graph")
	}
	hw := opt.hardware()
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	// One oracle spans the whole pipeline: atoms priced during candidate
	// generation are cache hits for the scheduler and the simulator.
	if hw.Oracle == nil {
		hw.Oracle = cost.Default()
	}
	if opt.Metrics != nil {
		hw.Metrics = opt.Metrics
	}
	ctx := opt.context()
	if hw.Ctx == nil {
		hw.Ctx = ctx
	}
	// Two-tier oracle: the surrogate trains from the shared oracle's
	// exact-evaluation (cache-miss) stream and pre-filters candidate
	// generation. Attached only when enabled, so the default hot path has
	// no sampling hook at all.
	var surModel *SurrogateModel
	if opt.Surrogate {
		surModel = opt.SurrogateModel
		if surModel == nil {
			surModel = surrogate.New()
		}
		surModel.Instrument(hw.Metrics)
		cost.AttachSampler(hw.Oracle, surModel)
		if opt.SurrogateModel == nil {
			// The model is run-local: unhook it afterwards so a shared
			// oracle does not keep feeding a dead model on later runs.
			defer cost.AttachSampler(hw.Oracle, nil)
		}
	}
	start := time.Now()
	aopt := anneal.Options{
		MaxIters:       opt.SAIters,
		Seed:           opt.Seed,
		Chains:         opt.Chains,
		MaxTilesPerLay: opt.MaxTilesPerLayer,
		VerifyDelta:    opt.VerifyDelta,
		Surrogate:      surModel,
		WarmStart:      opt.WarmStart,
		Oracle:         hw.Oracle,
		Metrics:        hw.Metrics,
		Progress:       opt.Progress,
		Ctx:            ctx,
	}
	var res anneal.Result
	if search != nil {
		var err error
		if res, err = search(g, hw.Engine, hw.Dataflow, aopt); err != nil {
			return nil, err
		}
	} else {
		res = anneal.SA(g, hw.Engine, hw.Dataflow, aopt)
	}
	// SA returns its best-so-far state on cancellation; surface the
	// abandonment as an error before burning time on the later stages.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("atomicflow: orchestration abandoned: %w", err)
	}
	d, err := atom.Build(g, opt.batch(), res.Spec)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Build(d, schedule.Options{
		Engines:   hw.Mesh.Engines(),
		Mode:      opt.Mode,
		EngineCfg: hw.Engine,
		Dataflow:  hw.Dataflow,
		Oracle:    hw.Oracle,
		Ctx:       ctx,
	})
	if err != nil {
		return nil, err
	}
	searchTime := time.Since(start)
	if opt.TraceWriter != nil || opt.PerfettoWriter != nil {
		col := &trace.Collector{}
		hw.Trace = col.Hook
		defer func() {
			if opt.TraceWriter != nil {
				if err := col.WriteChrome(opt.TraceWriter, g); err != nil {
					fmt.Fprintf(opt.TraceWriter, `{"error": %q}`, err.Error())
				}
			}
			if opt.PerfettoWriter != nil {
				if err := col.WritePerfetto(opt.PerfettoWriter, g); err != nil {
					fmt.Fprintf(opt.PerfettoWriter, `{"error": %q}`, err.Error())
				}
			}
		}()
	}
	rep, err := sim.Run(d, s, hw)
	if err != nil {
		return nil, err
	}
	atoms := 0
	for _, a := range d.Atoms {
		if a.Task.Kind != graph.OpInput {
			atoms++
		}
	}
	ostats, _ := cost.StatsOf(hw.Oracle)
	var snap MetricsSnapshot
	if hw.Metrics != nil {
		snap = hw.Metrics.Snapshot()
	}
	return &Solution{
		Report:         rep,
		Atoms:          atoms,
		Rounds:         s.NumRounds(),
		AtomCycleCV:    res.FinalCV,
		SATrace:        res.Trace,
		SearchTime:     searchTime,
		OracleStats:    ostats,
		SurrogateStats: surModel.Stats(),
		Metrics:        snap,
		dag:            d,
		sched:          s,
		spec:           res.Spec,
	}, nil
}

// Baseline strategies (paper Sec. II-B, V-A). Each runs the named
// orchestration on the same hardware model and returns its Report.

// RunLS simulates the Layer-Sequential baseline.
func RunLS(g *Graph, batch int, hw HardwareConfig) (Report, error) {
	return baseline.LS(g, batchOr1(batch), hw)
}

// RunCNNP simulates the CNN-Partition baseline.
func RunCNNP(g *Graph, batch int, hw HardwareConfig) (Report, error) {
	return baseline.CNNP(g, batchOr1(batch), hw)
}

// RunILPipe simulates the Inter-Layer Pipelining baseline (with ALLO
// fine-grained pipelining).
func RunILPipe(g *Graph, batch int, hw HardwareConfig) (Report, error) {
	return baseline.ILPipe(g, batchOr1(batch), hw)
}

// RunRammer simulates a Rammer-style rTask co-location baseline.
func RunRammer(g *Graph, batch int, hw HardwareConfig) (Report, error) {
	return baseline.Rammer(g, batchOr1(batch), hw)
}

func batchOr1(b int) int {
	if b < 1 {
		return 1
	}
	return b
}
