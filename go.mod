module github.com/atomic-dataflow/atomicflow

go 1.22
