package atomicflow

import (
	"strings"
	"testing"
)

func TestTraceWriterOption(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	hw := smallHW()
	var sb strings.Builder
	_, err := Orchestrate(g, Options{Hardware: &hw, TraceWriter: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("no trace emitted: %q", sb.String()[:min(80, len(sb.String()))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPerfettoWriterOption(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	hw := smallHW()
	var sb strings.Builder
	_, err := Orchestrate(g, Options{Hardware: &hw, PerfettoWriter: &sb})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"traceEvents", "process_name", "dram"} {
		if !strings.Contains(out, want) {
			t.Errorf("perfetto trace missing %q", want)
		}
	}
}

func TestMetricsOption(t *testing.T) {
	g, _ := LoadModel("tinyresnet")
	hw := smallHW()
	reg := NewMetrics()
	sol, err := Orchestrate(g, Options{Hardware: &hw, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Metrics.Counter("sim_cycles_total"); got != sol.Report.Cycles {
		t.Errorf("snapshot sim_cycles_total = %d, want %d", got, sol.Report.Cycles)
	}
	if sol.Metrics.Counter("anneal_iterations_total") == 0 {
		t.Error("SA metrics not collected through Options.Metrics")
	}
	if sol.Metrics.Counter("noc_link_bytes_total") == 0 {
		t.Error("NoC link traffic not collected")
	}
	// No registry installed -> zero-value snapshot, no metrics overhead.
	bare, err := Orchestrate(g, Options{Hardware: &hw})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Metrics.Counters != nil {
		t.Error("snapshot populated without a registry")
	}
	if bare.Report != sol.Report {
		t.Errorf("metrics perturbed the Report:\nbare:    %+v\nmetered: %+v",
			bare.Report, sol.Report)
	}
}
