package atomicflow

import (
	"strings"
	"testing"
)

func TestTraceWriterOption(t *testing.T) {
	g, _ := LoadModel("tinyconv")
	hw := smallHW()
	var sb strings.Builder
	_, err := Orchestrate(g, Options{Hardware: &hw, TraceWriter: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("no trace emitted: %q", sb.String()[:min(80, len(sb.String()))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
