// Multi-tenant serving: co-locate two different DNNs on one accelerator.
// The paper's related work (HDA, PREMA, Layerweaver) motivates multi-DNN
// scheduling; atomic dataflow gets it for free — the union of two
// workload graphs is just another atomic DAG, and the scheduler
// interleaves the tenants' atoms wherever either one would leave engines
// idle.
package main

import (
	"fmt"
	"log"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	// Two tenants that individually cannot fill an 8x8-engine chip: a
	// small NAS cell (think: an always-on assistant model) and
	// EfficientNet at batch 1.
	cell, err := af.LoadModel("pnascell")
	if err != nil {
		log.Fatal(err)
	}
	eff, err := af.LoadModel("efficientnet")
	if err != nil {
		log.Fatal(err)
	}

	hw := af.DefaultHardware()
	solo := 0.0
	for _, g := range []*af.Graph{cell, eff} {
		sol, err := af.Orchestrate(g, af.Options{Batch: 1, Hardware: &hw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8.4f ms  util %5.1f%%\n",
			g.Name+" alone:", sol.Report.TimeMS, 100*sol.Report.PEUtilization)
		solo += sol.Report.TimeMS
	}

	both, err := af.UnionGraphs("pnascell+efficientnet", cell, eff)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := af.Orchestrate(both, af.Options{Batch: 1, Hardware: &hw})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.4f ms  util %5.1f%%\n",
		"co-located:", sol.Report.TimeMS, 100*sol.Report.PEUtilization)
	fmt.Printf("\nsequential total %.4f ms vs co-located %.4f ms -> %.2fx:\n",
		solo, sol.Report.TimeMS, solo/sol.Report.TimeMS)
	fmt.Println("the small tenant's atoms slot into rounds the big tenant cannot fill,")
	fmt.Println("so it rides along nearly for free — no fixed resource partitioning needed.")
}
