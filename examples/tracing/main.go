// Tracing: export a Chrome trace of an atomic-dataflow execution and
// print a terminal Gantt summary. The trace makes the scheduler's
// behaviour visible — which layers share Rounds, how full each Round is,
// where memory stalls stretch the barriers.
package main

import (
	"fmt"
	"log"
	"os"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	g, err := af.LoadModel("tinybranch")
	if err != nil {
		log.Fatal(err)
	}
	hw := af.DefaultHardware()
	hw.Mesh = af.NewMesh(2, 2, hw.Mesh.LinkBytes)

	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	sol, err := af.Orchestrate(g, af.Options{
		Batch: 2, Hardware: &hw, Mode: af.ModeDP, TraceWriter: f,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d atoms over %d rounds, %.4f ms\n",
		g.Summary(), sol.Atoms, sol.Rounds, sol.Report.TimeMS)
	fmt.Println("wrote trace.json — open chrome://tracing or https://ui.perfetto.dev")
	fmt.Println("\neach lane is one engine; block names are the layers whose atoms ran;")
	fmt.Println("'mem-block' rows mark cycles where a Round outlived its compute.")
}
