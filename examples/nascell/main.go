// NAS-cell scheduling: the paper's Fig. 6 walks through the parallelism
// of a PNASNet cell — intra-layer atoms, same-depth siblings, dependent
// layers, and batch-level parallelism. This example reproduces that
// analysis on the bundled PNASNet cell, printing how each Round mixes
// atoms from different layers and samples.
package main

import (
	"fmt"
	"log"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	g, err := af.LoadModel("pnascell")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())
	fmt.Printf("max graph depth %d -> layers at equal depth can run in parallel\n\n", g.MaxDepth())

	// A small 2x2-engine accelerator keeps the Round trace readable.
	hw := af.DefaultHardware()
	hw.Mesh = af.NewMesh(2, 2, hw.Mesh.LinkBytes)

	for _, batch := range []int{1, 4} {
		sol, err := af.Orchestrate(g, af.Options{Batch: batch, Hardware: &hw, Mode: af.ModeDP})
		if err != nil {
			log.Fatal(err)
		}
		r := sol.Report
		fmt.Printf("batch %d: %d atoms over %d rounds, %.3f ms, util %.1f%%\n",
			batch, sol.Atoms, sol.Rounds, r.TimeMS, 100*r.PEUtilization)
	}

	fmt.Println("\nBatch-level parallelism (Fig. 6 type 4) lifts utilization: the")
	fmt.Println("cell's irregular branches alone cannot fill every engine each Round,")
	fmt.Println("but atoms of later samples can.")
}
