// Custom model: build your own workload graph with the public API — here
// a small super-resolution-style network with a long skip connection —
// then orchestrate it and compare every strategy.
package main

import (
	"fmt"
	"log"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	g := af.NewGraph("edsr-lite")
	in := g.AddLayer("input", af.OpInput, af.Shape{Hi: 64, Wi: 64, Ci: 3, Ho: 64, Wo: 64, Co: 3})
	head := g.AddLayer("head", af.OpConv, af.ConvShape(64, 64, 3, 32, 3, 1, 1), in)

	// Four residual blocks.
	x := head
	for i := 0; i < 4; i++ {
		c1 := g.AddLayer(fmt.Sprintf("rb%d_conv1", i), af.OpConv,
			af.ConvShape(64, 64, 32, 32, 3, 1, 1), x)
		c2 := g.AddLayer(fmt.Sprintf("rb%d_conv2", i), af.OpConv,
			af.ConvShape(64, 64, 32, 32, 3, 1, 1), c1)
		x = g.AddLayer(fmt.Sprintf("rb%d_add", i), af.OpEltwise,
			af.EltwiseShape(64, 64, 32), x, c2)
	}

	// Long skip from the head, then reconstruction.
	skip := g.AddLayer("long_skip", af.OpEltwise, af.EltwiseShape(64, 64, 32), head, x)
	g.AddLayer("tail", af.OpConv, af.ConvShape(64, 64, 32, 3, 3, 1, 1), skip)

	if err := g.Finalize(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())

	hw := af.DefaultHardware()
	hw.Mesh = af.NewMesh(4, 4, hw.Mesh.LinkBytes)

	sol, err := af.Orchestrate(g, af.Options{Batch: 4, Hardware: &hw, Mode: af.ModeDP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %9.3f ms  util %5.1f%%  energy %6.2f mJ\n",
		"atomic dataflow", sol.Report.TimeMS, 100*sol.Report.PEUtilization,
		sol.Report.Energy.TotalMJ())

	for _, b := range []struct {
		name string
		run  func(*af.Graph, int, af.HardwareConfig) (af.Report, error)
	}{
		{"LS", af.RunLS}, {"CNN-P", af.RunCNNP},
		{"IL-Pipe", af.RunILPipe}, {"Rammer", af.RunRammer},
	} {
		rep, err := b.run(g, 4, hw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %9.3f ms  util %5.1f%%  energy %6.2f mJ\n",
			b.name, rep.TimeMS, 100*rep.PEUtilization, rep.Energy.TotalMJ())
	}

	// The long skip keeps the head's output alive across the whole
	// network: atomic dataflow's buffering (Algorithm 3) decides whether
	// it stays in distributed SRAM or spills, by invalid occupation.
	fmt.Printf("\nAD evictions: %d, on-chip reuse: %.1f%%\n",
		sol.Report.Evictions, 100*sol.Report.OnChipReuseRatio)
}
