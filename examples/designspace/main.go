// Design-space exploration: the paper's Sec. V-C uses the framework to
// pick accelerator design points. This example fixes the total compute
// (4096 PEs) and total buffer (2 MB) and sweeps how the chip is cut into
// engines, reproducing the U-shaped curves of Fig. 12 at a smaller scale,
// then sweeps the per-engine buffer like Fig. 13.
package main

import (
	"fmt"
	"log"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	g, err := af.LoadModel("inceptionv3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())

	const totalPEside = 64 // 4096 PEs
	const totalBuffer = 2 << 20

	fmt.Println("\nengine-count sweep (fixed 4096 PEs, 2 MB buffer):")
	bestGrid, bestMS := 0, 0.0
	for _, grid := range []int{1, 2, 4, 8} {
		hw := af.DefaultHardware()
		hw.Mesh = af.NewMesh(grid, grid, hw.Mesh.LinkBytes)
		hw.Engine.PEx = totalPEside / grid
		hw.Engine.PEy = totalPEside / grid
		hw.Engine.BufferBytes = totalBuffer / (grid * grid)
		hw.BufferBytes = int64(hw.Engine.BufferBytes)
		sol, err := af.Orchestrate(g, af.Options{Batch: 1, Hardware: &hw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %dx%d engines of %3dx%-3d PEs, %4d KB: %8.3f ms\n",
			grid, grid, hw.Engine.PEx, hw.Engine.PEy, hw.Engine.BufferBytes>>10,
			sol.Report.TimeMS)
		if bestGrid == 0 || sol.Report.TimeMS < bestMS {
			bestGrid, bestMS = grid, sol.Report.TimeMS
		}
	}
	fmt.Printf("sweet spot: %dx%d engines (%.3f ms) — neither monolithic nor maximally sliced\n",
		bestGrid, bestGrid, bestMS)

	fmt.Println("\nper-engine buffer sweep (4x4 engines):")
	for _, kb := range []int{32, 64, 128, 256} {
		hw := af.DefaultHardware()
		hw.Mesh = af.NewMesh(4, 4, hw.Mesh.LinkBytes)
		hw.Engine.PEx, hw.Engine.PEy = 16, 16
		hw.Engine.BufferBytes = kb << 10
		hw.BufferBytes = int64(kb << 10)
		sol, err := af.Orchestrate(g, af.Options{Batch: 1, Hardware: &hw})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d KB: %8.3f ms (reuse %.1f%%)\n",
			kb, sol.Report.TimeMS, 100*sol.Report.OnChipReuseRatio)
	}
}
