// Quickstart: orchestrate ResNet-50 on the paper's default 8x8-engine
// accelerator with atomic dataflow, and compare against the strongest
// baseline.
package main

import (
	"fmt"
	"log"

	af "github.com/atomic-dataflow/atomicflow"
)

func main() {
	// 1. Load a workload from the bundled zoo (or build your own graph —
	//    see examples/custommodel).
	g, err := af.LoadModel("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Summary())

	// 2. Orchestrate: SA atom generation -> atomic DAG -> priority-pruned
	//    DP scheduling -> mesh mapping + buffering -> simulation.
	sol, err := af.Orchestrate(g, af.Options{Batch: 1})
	if err != nil {
		log.Fatal(err)
	}
	r := sol.Report
	fmt.Printf("atomic dataflow: %.3f ms, PE utilization %.1f%%, on-chip reuse %.1f%%\n",
		r.TimeMS, 100*r.PEUtilization, 100*r.OnChipReuseRatio)
	fmt.Printf("  %d atoms in %d rounds, atom-cycle CV %.3f, search took %v\n",
		sol.Atoms, sol.Rounds, sol.AtomCycleCV, sol.SearchTime.Round(1e6))
	fmt.Printf("  energy: %.2f mJ\n", r.Energy.TotalMJ())

	// 3. Compare with Layer-Sequential on identical hardware.
	ls, err := af.RunLS(g, 1, af.DefaultHardware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layer-sequential: %.3f ms -> atomic dataflow is %.2fx faster\n",
		ls.TimeMS, ls.TimeMS/r.TimeMS)
}
